// Shared helpers for the benchmark harness: CLI parsing, repetition with
// median/CI summaries, and the scaled-workload setup that lets the cost
// model charge the paper's full problem sizes while the process executes a
// proportional sample (see DESIGN.md, "virtual workload mode").
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"
#include "net/machine.h"
#include "obs/features.h"
#include "obs/ledger.h"
#include "obs/report.h"
#include "runtime/comm.h"
#include "runtime/team.h"

namespace hds::bench {

/// "--key=value" / "--flag" command-line arguments.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string s = argv[i];
      if (s.rfind("--", 0) != 0) continue;
      s = s.substr(2);
      const auto eq = s.find('=');
      if (eq == std::string::npos)
        kv_[s] = std::string("1");  // avoids a GCC 12 -Wrestrict false
                                    // positive on assign(const char*)
      else
        kv_[s.substr(0, eq)] = s.substr(eq + 1);
    }
  }

  i64 get_int(const std::string& key, i64 fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::stoll(it->second);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::stod(it->second);
  }
  std::string get_string(const std::string& key,
                         const std::string& fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }
  bool has(const std::string& key) const { return kv_.count(key) > 0; }

 private:
  std::map<std::string, std::string> kv_;
};

/// Paper-style measurement: `reps` measured runs, reporting the median and
/// the 95% CI of the median. The paper additionally excluded a warmup run;
/// simulated time is deterministic per seed, so a warmup would only burn
/// wall-clock — enable it explicitly when measuring real time.
template <class RunFn>
Summary measure(int reps, RunFn run, bool warmup = false) {
  if (warmup) (void)run(/*rep=*/-1);
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) times.push_back(run(r));
  return summarize(std::move(times));
}

/// `--trace[=out.json]` support: writes the Chrome trace of the team's most
/// recent run (benches call this once per scale point, so the file ends up
/// holding the last — largest — configuration) and prints the communication
/// matrix summary. No-op without the flag or when tracing was off.
inline void write_trace_if_requested(const Args& args,
                                     const runtime::Team& team) {
  if (!args.has("trace")) return;
  const obs::TraceReport* trace = team.trace();
  if (trace == nullptr) return;
  // A bare "--trace" parses as value "1"; fall back to a real filename.
  std::string path = args.get_string("trace", "trace.json");
  if (path == "1") path = "trace.json";
  std::ofstream out(path);
  trace->write_chrome_json(out);
  std::cerr << "  trace: " << trace->total_events() << " events ("
            << trace->nranks << " ranks) -> " << path << "\n"
            << trace->comm_matrix().summary() << "\n";
}

/// `--ledger[=out.json]` support: distill the team's most recent traced run
/// into a versioned RunLedger (obs/ledger.h), attach the fitted cost
/// features, and write it. `bench` names the producing binary; `config`
/// records the cell's knobs and `scalars` its headline numbers (the cells
/// tools/perf_history.py tracks). Also prints the differential-profiler
/// attribution table, and with `--calibration[=out.json]` exports the
/// fitted per-class constants for the tuner. No-op without the flag or
/// when tracing was off.
inline void write_ledger_if_requested(
    const Args& args, const runtime::Team& team, const std::string& bench,
    u64 total_elements,
    std::vector<std::pair<std::string, std::string>> config = {},
    std::vector<std::pair<std::string, double>> scalars = {}) {
  if (!args.has("ledger")) return;
  const obs::TraceReport* trace = team.trace();
  if (trace == nullptr) return;
  obs::RunLedger led = obs::RunLedger::from_trace(*trace, team.cost());
  led.bench = bench;
  led.total_elements = total_elements;
  led.config = std::move(config);
  led.scalars = std::move(scalars);
  obs::attach_features(led, team.cost());
  std::string path = args.get_string("ledger", "ledger.json");
  if (path == "1") path = "ledger.json";
  std::ofstream out(path);
  led.write_json(out);
  std::cerr << "  ledger: " << led.samples.size() << " op samples ("
            << led.nranks << " ranks) -> " << path << "\n";
  std::cout << obs::attribution_table(led);
  if (args.has("calibration")) {
    std::string cpath = args.get_string("calibration", "calibration.json");
    if (cpath == "1") cpath = "calibration.json";
    std::ofstream cout_(cpath);
    obs::write_calibration_json(cout_, led);
    std::cerr << "  calibration: " << led.features.fits.size()
              << " class fits -> " << cpath << "\n";
  }
}

/// Ledger variant for wall-clock benches that never build a Team
/// (bench_local_sort): machine config and per-phase data are empty, only
/// the headline scalars are recorded — still enough for the perf-history
/// comparator to track the cells.
inline void write_wallclock_ledger_if_requested(
    const Args& args, const std::string& bench, u64 total_elements,
    std::vector<std::pair<std::string, std::string>> config,
    std::vector<std::pair<std::string, double>> scalars) {
  if (!args.has("ledger")) return;
  obs::RunLedger led;
  led.bench = bench;
  led.nranks = 1;
  led.nodes = 1;
  led.ranks_per_node = 1;
  led.total_elements = total_elements;
  led.config = std::move(config);
  led.scalars = std::move(scalars);
  std::string path = args.get_string("ledger", "ledger.json");
  if (path == "1") path = "ledger.json";
  std::ofstream out(path);
  led.write_json(out);
  std::cerr << "  ledger: " << led.scalars.size() << " scalar cells -> "
            << path << "\n";
}

/// Node counts 1, 2, 4, ..., max (the paper's strong/weak scaling x-axis).
inline std::vector<int> node_series(int max_nodes) {
  std::vector<int> nodes;
  for (int n = 1; n <= max_nodes; n *= 2) nodes.push_back(n);
  return nodes;
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace hds::bench
