// Table I: SuperMUC Phase 2 single-node specifications — printed from the
// machine model the simulated-time experiments charge against, alongside
// the model's calibration constants so every other bench is interpretable.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "net/calibrate.h"
#include "net/machine.h"

int main(int argc, char** argv) {
  using namespace hds;
  const bench::Args args(argc, argv);
  auto m = net::MachineModel::supermuc_phase2(
      static_cast<int>(args.get_int("nodes", 128)),
      static_cast<int>(args.get_int("ranks-per-node", 16)));
  if (args.has("calibrate")) {
    // Replace the SuperMUC-era compute constants with measurements of the
    // build host (communication constants stay modelled).
    const auto cal = net::measure_host_constants();
    net::apply_calibration(m, cal);
  }

  bench::print_header("Machine model", "Table I (SuperMUC Phase 2 node)");

  Table spec({"property", "value"});
  spec.add_row({"CPU", m.cpu});
  spec.add_row({"Memory", m.memory});
  spec.add_row({"Network", m.network});
  spec.add_row({"Compiler", m.compiler});
  spec.add_row({"MPI library", m.mpi});
  spec.add_row({"Cores per node", std::to_string(m.cores_per_node)});
  spec.add_row({"NUMA domains per node",
                std::to_string(m.numa_domains_per_node)});
  std::cout << spec.to_string() << "\n";

  Table model({"model parameter", "value"});
  model.add_row({"nodes modelled", std::to_string(m.nodes)});
  model.add_row({"ranks per node", std::to_string(m.ranks_per_node)});
  model.add_row({"NIC latency", fmt(m.net_alpha_s * 1e6, 2) + " us"});
  model.add_row({"NIC bandwidth", fmt_bytes(m.net_bandwidth_Bps) + "/s"});
  model.add_row({"fat-tree bisection (512 nodes)",
                 fmt_bytes(m.bisection_Bps) + "/s"});
  model.add_row({"allocated bisection",
                 fmt_bytes(m.allocated_bisection_Bps()) + "/s"});
  model.add_row({"same-NUMA memcpy", fmt_bytes(m.memcpy_Bps) + "/s"});
  model.add_row({"cross-NUMA p2p", fmt_bytes(m.numa_Bps) + "/s"});
  model.add_row({"cross-NUMA fabric", fmt_bytes(m.numa_fabric_Bps) + "/s"});
  model.add_row({"intra-node latency", fmt(m.mem_alpha_s * 1e6, 2) + " us"});
  model.add_row({"sort constant", fmt(m.sort_s_per_elem_log * 1e9, 3) +
                                      " ns/elem/log2(n)"});
  model.add_row({"merge-pass constant",
                 fmt(m.merge_s_per_elem * 1e9, 3) + " ns/elem"});
  model.add_row({"binary-search step",
                 fmt(m.binsearch_s_per_step * 1e9, 3) + " ns/step"});
  model.add_row({"intra-node shortcut",
                 m.intra_node_shortcut ? "on (PGAS memcpy collectives)"
                                       : "off"});
  std::cout << model.to_string();
  return 0;
}
