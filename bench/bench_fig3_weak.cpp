// Fig. 3: weak scaling study, DASH vs Charm++ HSS. Uniform u64, a fixed
// 128 MiB (2^24 keys) per rank (2 GiB per node at 16 ranks/node, the
// paper's setup), 1..128 nodes.
//
//  (a) absolute median time and weak-scaling efficiency t(1)/t(n) — the
//      paper measures 2.3 s on one node growing to 4.6 s on 128 nodes
//      (~256 GB crossing the network), Charm++ volatile in a 5-25 s band;
//  (b) phase breakdown — local sort and the ALL-TO-ALL exchange dominate;
//      the histogramming ALLREDUCE is amortized.
#include <iostream>

#include "baselines/hss_sort.h"
#include "bench_common.h"
#include "core/histogram_sort.h"
#include "workload/distributions.h"

int main(int argc, char** argv) {
  using namespace hds;
  using runtime::Comm;
  using runtime::Team;
  const bench::Args args(argc, argv);
  const int max_nodes = static_cast<int>(args.get_int("max-nodes", 128));
  const int rpn = static_cast<int>(args.get_int("ranks-per-node", 16));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const u64 model_per_rank = args.get_int("model-keys-per-rank", u64{1} << 24);
  const u64 real_per_rank = args.get_int("real-keys-per-rank", 2048);

  bench::print_header(
      "Weak scaling: DASH histogram sort vs Charm++ HSS",
      "Fig. 3(a)+(b); uniform u64, " +
          fmt_bytes(static_cast<double>(model_per_rank) * 8) +
          " per rank modelled");

  struct Row {
    int nodes;
    Summary hds, hss;
    bool hss_ok = true;
    std::array<double, net::kPhaseCount> phases{};
  };
  std::vector<Row> rows;

  for (int nodes : bench::node_series(max_nodes)) {
    const int P = nodes * rpn;
    runtime::TeamConfig cfg;
    cfg.nranks = P;
    cfg.machine = net::MachineModel::supermuc_phase2(nodes, rpn);
    cfg.data_scale = static_cast<double>(model_per_rank) /
                     static_cast<double>(real_per_rank);
    cfg.trace = args.has("trace");

    Row row;
    row.nodes = nodes;
    {
      Team team(cfg);
      row.hds = bench::measure(reps, [&](int rep) {
        workload::GenConfig gen;
        gen.seed = 17 + rep;
        team.run([&](Comm& c) {
          auto local = workload::generate_u64(gen, c.rank(), c.size(),
                                              real_per_rank);
          core::sort(c, local);
        });
        for (usize p = 0; p < net::kPhaseCount; ++p)
          row.phases[p] =
              team.stats().phase_fraction(static_cast<net::Phase>(p));
        return team.stats().makespan_s;
      });
      bench::write_trace_if_requested(args, team);
      bench::write_ledger_if_requested(
          args, team, "bench_fig3_weak",
          static_cast<u64>(real_per_rank) * static_cast<u64>(P),
          {{"nodes", std::to_string(nodes)},
           {"ranks_per_node", std::to_string(rpn)},
           {"real_keys_per_rank", std::to_string(real_per_rank)}},
          {{"sim_makespan_s", team.stats().makespan_s}});
    }
    {
      Team team(cfg);
      try {
        row.hss = bench::measure(reps, [&](int rep) {
          workload::GenConfig gen;
          gen.seed = 17 + rep;
          baselines::HssConfig hcfg;
          hcfg.seed = 23 + rep;
          team.run([&](Comm& c) {
            auto local = workload::generate_u64(gen, c.rank(), c.size(),
                                                real_per_rank);
            baselines::hss_sort(c, local, hcfg);
          });
          return team.stats().makespan_s;
        });
      } catch (const baselines::hss_timeout&) {
        row.hss_ok = false;
      }
    }
    rows.push_back(row);
    std::cerr << "  done: " << nodes << " node(s), P=" << P << "\n";
  }

  Table fig3a({"nodes", "cores", "DASH t[s]", "DASH CI95", "DASH efficiency",
               "Charm++ t[s]", "Charm++ CI95"});
  const double t1 = rows.front().hds.median;
  for (const Row& r : rows) {
    fig3a.add_row(
        {std::to_string(r.nodes), std::to_string(r.nodes * rpn),
         fmt(r.hds.median), "[" + fmt(r.hds.ci_lo) + "," + fmt(r.hds.ci_hi) + "]",
         fmt(t1 / r.hds.median, 3),
         r.hss_ok ? fmt(r.hss.median) : "DNF",
         r.hss_ok ? "[" + fmt(r.hss.ci_lo) + "," + fmt(r.hss.ci_hi) + "]"
                  : "-"});
  }
  std::cout << "Fig. 3(a) — median of " << reps << " runs:\n"
            << fig3a.to_string() << "\n";

  Table fig3b({"nodes", "LocalSort %", "Histogram %", "Exchange %",
               "Merge %", "Other %"});
  for (const Row& r : rows) {
    std::vector<std::string> cells{std::to_string(r.nodes)};
    for (const net::Phase p :
         {net::Phase::LocalSort, net::Phase::Histogram, net::Phase::Exchange,
          net::Phase::Merge, net::Phase::Other})
      cells.push_back(fmt(100.0 * r.phases[static_cast<usize>(p)], 1));
    fig3b.add_row(std::move(cells));
  }
  std::cout << "Fig. 3(b) — DASH phase breakdown (rank-averaged):\n"
            << fig3b.to_string();
  return 0;
}
