// Exchange data-path study: real wall-clock comparison of the single-copy
// pull path (Comm::alltoallv_into, DESIGN.md sec. 11) against the legacy
// packed path for the exchange and merge supersteps, at P in {8, 16} on u64
// keys and 64-byte records.
//
// Like bench_local_sort this measures *real* time, not simulated time: the
// two paths charge bit-identical simulated costs by construction (asserted
// in test_exchange_datapath.cpp), so the only observable difference is the
// wall-clock of the copies the data path saves. The exchange superstep and
// the merge superstep are timed separately (barrier-to-barrier on rank 0's
// clock): the merge does identical comparison-bound work on both paths, so
// folding it into one number would bury the copy delta the bench exists to
// see — the CI gate therefore reads the phase=="exchange" cells, while the
// "exchange+merge" cells document the end-to-end effect. Splitters are
// computed once per cell and reused across reps. Emits BENCH_exchange.json
// (one object per (type, P, path, phase) cell) consumed by the ci.sh perf
// gate.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/exchange.h"
#include "core/histogram_sort.h"
#include "core/merge.h"
#include "runtime/comm.h"
#include "runtime/team.h"

namespace {

using namespace hds;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// 64-byte record: sort key plus 56 payload bytes, the paper's "large
/// element" regime where copy cost dominates comparison cost.
struct Rec64 {
  u64 key;
  u64 pad[7];
};

struct Cell {
  std::string type;
  int nranks = 0;
  std::string path;
  std::string phase;  // "exchange" | "exchange+merge"
  usize n_per_rank = 0;
  double seconds_median = 0.0;
  double speedup_vs_packed = 1.0;
  std::string algo = "alltoallv";  // "alltoallv" | "kary"
  int k = 0;                       // k-ary radix; 0 for alltoallv
  /// Per-round simulated-time attribution (k-ary cells only): how much of
  /// each round is communication vs overlapped tail merge on rank 0.
  std::vector<core::KAryRoundTrace> rounds;
};

struct Timing {
  double exchange = 0.0;  ///< median seconds, exchange superstep only
  double total = 0.0;     ///< median seconds, exchange + merge
};

template <class T, class KeyFn, class MakeFn>
Timing time_exchange(int P, usize n, int reps, u64 seed, core::DataPath path,
                     core::MergeStrategy merge, KeyFn key, MakeFn make) {
  runtime::Team team({.nranks = P});
  std::vector<double> t_exchange, t_total;
  team.run([&](runtime::Comm& c) {
    Xoshiro256 rng(hash_mix(seed, static_cast<u64>(c.rank())));
    std::vector<T> local(n);
    for (auto& v : local) v = make(rng);
    std::sort(local.begin(), local.end(),
              [&](const T& a, const T& b) { return key(a) < key(b); });
    const std::span<const T> sorted_view(local.data(), local.size());

    std::vector<usize> targets(static_cast<usize>(P) - 1);
    for (usize b = 0; b < targets.size(); ++b) targets[b] = (b + 1) * n;
    const auto sp = core::find_splitters(c, sorted_view, key,
                                         std::span<const usize>(targets));

    // Two separate rep loops rather than split timestamps in one: the merge
    // between reps perturbs allocator and cache state enough to swamp the
    // exchange delta on an oversubscribed host, so the gated exchange cells
    // are measured with nothing else in the loop.
    for (int r = 0; r <= reps; ++r) {  // rep 0 is a warmup
      c.barrier();
      const double t0 = now_s();
      auto ex = core::exchange(c, sorted_view, sp, path);
      c.barrier();
      const double t1 = now_s();
      usize off = 0;
      for (const usize cnt : ex.recv_counts) {
        if (!std::is_sorted(
                ex.data.begin() + static_cast<std::ptrdiff_t>(off),
                ex.data.begin() + static_cast<std::ptrdiff_t>(off + cnt),
                            [&](const T& a, const T& b) {
                              return key(a) < key(b);
                            })) {
          std::cerr << "FATAL: exchange produced an unsorted chunk\n";
          std::exit(1);
        }
        off += cnt;
      }
      if (c.rank() == 0 && r > 0) t_exchange.push_back(t1 - t0);
    }
    for (int r = 0; r <= reps; ++r) {  // rep 0 is a warmup
      c.barrier();
      const double t0 = now_s();
      auto ex = core::exchange(c, sorted_view, sp, path);
      core::merge_chunks(c, ex.data, std::span<const usize>(ex.recv_counts),
                         merge, key);
      c.barrier();
      const double t1 = now_s();
      if (!std::is_sorted(ex.data.begin(), ex.data.end(),
                          [&](const T& a, const T& b) {
                            return key(a) < key(b);
                          })) {
        std::cerr << "FATAL: exchange+merge produced unsorted output\n";
        std::exit(1);
      }
      if (c.rank() == 0 && r > 0) t_total.push_back(t1 - t0);
    }
  });
  return {median(std::move(t_exchange)), median(std::move(t_total))};
}

/// The k-ary exchange with overlap returns one already-merged run; timing
/// it barrier-to-barrier therefore covers the "exchange+merge" phase. The
/// per-round simulated breakdown (communication vs overlapped merge) is
/// captured from rank 0 during the warmup rep — it is deterministic.
template <class T, class KeyFn, class MakeFn>
double time_kary(int P, usize n, int reps, u64 seed, core::DataPath path,
                 int k, KeyFn key, MakeFn make,
                 std::vector<core::KAryRoundTrace>& trace_out) {
  runtime::Team team({.nranks = P});
  std::vector<double> t_total;
  team.run([&](runtime::Comm& c) {
    Xoshiro256 rng(hash_mix(seed, static_cast<u64>(c.rank())));
    std::vector<T> local(n);
    for (auto& v : local) v = make(rng);
    std::sort(local.begin(), local.end(),
              [&](const T& a, const T& b) { return key(a) < key(b); });
    const std::span<const T> sorted_view(local.data(), local.size());

    std::vector<usize> targets(static_cast<usize>(P) - 1);
    for (usize b = 0; b < targets.size(); ++b) targets[b] = (b + 1) * n;
    const auto sp = core::find_splitters(c, sorted_view, key,
                                         std::span<const usize>(targets));

    for (int r = 0; r <= reps; ++r) {  // rep 0 is a warmup
      c.barrier();
      const double t0 = now_s();
      auto ex = core::exchange_kary(
          c, sorted_view, sp, key, k, /*overlap_merge=*/true, path,
          (r == 0 && c.rank() == 0) ? &trace_out : nullptr);
      c.barrier();
      const double t1 = now_s();
      if (!std::is_sorted(ex.data.begin(), ex.data.end(),
                          [&](const T& a, const T& b) {
                            return key(a) < key(b);
                          })) {
        std::cerr << "FATAL: k-ary exchange produced unsorted output\n";
        std::exit(1);
      }
      if (c.rank() == 0 && r > 0) t_total.push_back(t1 - t0);
    }
  });
  return median(std::move(t_total));
}

/// One representative traced run for --trace / --ledger (satellite of the
/// observability PR): u64 keys at P=16 through the pull-path k-ary exchange
/// with merge overlap — the configuration the CI gate watches — executed
/// once in a trace-enabled team so the run ledger gets real slices. The
/// wall-clock cells above stay untraced: tracing is observational for
/// simulated time but not for the real time they measure.
void run_traced_representative(const bench::Args& args, usize n, u64 seed,
                               const std::vector<Cell>& cells) {
  if (!args.has("trace") && !args.has("ledger")) return;
  constexpr int P = 16;
  constexpr int kArity = 4;
  runtime::TeamConfig tcfg;
  tcfg.nranks = P;
  tcfg.trace = true;
  runtime::Team team(tcfg);
  team.run([&](runtime::Comm& c) {
    const auto key = [](u64 v) { return v; };
    Xoshiro256 rng(hash_mix(seed, static_cast<u64>(c.rank())));
    std::vector<u64> local(n);
    for (auto& v : local) v = rng();
    {
      net::PhaseScope ps(c.clock(), net::Phase::LocalSort);
      std::sort(local.begin(), local.end());
      c.charge_sort(local.size());
    }
    const std::span<const u64> sorted_view(local.data(), local.size());
    std::vector<usize> targets(static_cast<usize>(P) - 1);
    for (usize b = 0; b < targets.size(); ++b) targets[b] = (b + 1) * n;
    const auto sp = [&] {
      net::PhaseScope ps(c.clock(), net::Phase::Histogram);
      return core::find_splitters(c, sorted_view, key,
                                  std::span<const usize>(targets));
    }();
    net::PhaseScope ps(c.clock(), net::Phase::Exchange);
    auto ex = core::exchange_kary(c, sorted_view, sp, key, kArity,
                                  /*overlap_merge=*/true,
                                  core::DataPath::Pull, nullptr);
    if (!std::is_sorted(ex.data.begin(), ex.data.end())) {
      std::cerr << "FATAL: traced k-ary exchange produced unsorted output\n";
      std::exit(1);
    }
  });
  bench::write_trace_if_requested(args, team);

  // Headline cells for the perf history: deterministic simulated seconds
  // from the traced run (gated at >10% regression) plus the wall-clock
  // speedups of the gate cells (recorded, warn-only — they move with the
  // host machine).
  std::vector<std::pair<std::string, double>> scalars = {
      {"sim_makespan_s", team.stats().makespan_s},
      {"sim_exchange_s", team.stats().phase_seconds(net::Phase::Exchange)},
      {"sim_merge_s", team.stats().phase_seconds(net::Phase::Merge)},
      {"sim_histogram_s", team.stats().phase_seconds(net::Phase::Histogram)},
  };
  double best_kary = 0.0;
  for (const Cell& cell : cells) {
    if (cell.type != "u64" || cell.nranks != P) continue;
    if (cell.algo == "kary")
      best_kary = std::max(best_kary, cell.speedup_vs_packed);
    else if (cell.path == "pull" && cell.phase == "exchange")
      scalars.emplace_back("wall_pull_speedup_u64_exchange",
                           cell.speedup_vs_packed);
  }
  if (best_kary > 0.0)
    scalars.emplace_back("wall_kary_best_speedup_u64", best_kary);

  bench::write_ledger_if_requested(
      args, team, "bench_exchange", static_cast<u64>(n) * P,
      {{"type", "u64"},
       {"algo", "kary"},
       {"k", std::to_string(kArity)},
       {"path", "pull"},
       {"n_per_rank", std::to_string(n)},
       {"seed", std::to_string(seed)}},
      std::move(scalars));
}

void write_json(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "[\n";
  for (usize i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "  {\"type\": \"" << c.type << "\", \"nranks\": " << c.nranks
        << ", \"path\": \"" << c.path << "\", \"phase\": \"" << c.phase
        << "\", \"n_per_rank\": " << c.n_per_rank
        << ", \"seconds_median\": " << c.seconds_median
        << ", \"speedup_vs_packed\": " << c.speedup_vs_packed
        << ", \"algo\": \"" << c.algo << "\", \"k\": " << c.k;
    if (!c.rounds.empty()) {
      out << ", \"rounds\": [";
      for (usize r = 0; r < c.rounds.size(); ++r)
        out << (r ? ", " : "") << "{\"round\": " << r
            << ", \"exchange_s\": " << c.rounds[r].comm_s
            << ", \"merge_s\": " << c.rounds[r].merge_s << "}";
      out << "]";
    }
    out << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  const bench::Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 7));
  const u64 seed = static_cast<u64>(args.get_int("seed", 1));
  const usize n_u64 =
      static_cast<usize>(args.get_int("n_u64", i64{1} << 18));
  const usize n_rec =
      static_cast<usize>(args.get_int("n_rec", i64{1} << 15));
  const std::string out_path = args.get_string("out", "BENCH_exchange.json");
  const std::string merge_arg = args.get_string("merge", "binary-tree");
  const core::MergeStrategy merge =
      merge_arg == "sort"
          ? core::MergeStrategy::Sort
          : (merge_arg == "tournament" ? core::MergeStrategy::Tournament
                                       : core::MergeStrategy::BinaryTree);

  bench::print_header(
      "Exchange data-path study (real wall-clock)",
      "single-copy pull vs packed alltoallv; exchange and merge supersteps, "
      "median of " +
          std::to_string(reps) + " reps, merge=" + merge_arg);

  Table table({"type", "P", "n/rank", "phase", "packed t[s]", "pull t[s]",
               "speedup"});
  std::vector<Cell> cells;

  Table kary_table({"type", "P", "n/rank", "k", "rounds", "packed t[s]",
                    "kary t[s]", "speedup"});

  // Returns the packed exchange+merge median — the baseline the k-ary
  // cells of the same (type, P, n) are gated against.
  auto run_cell = [&](const std::string& type, int P, usize n, auto key,
                      auto make) {
    using T = std::decay_t<decltype(make(std::declval<Xoshiro256&>()))>;
    const Timing packed = time_exchange<T>(
        P, n, reps, seed, core::DataPath::Packed, merge, key, make);
    const Timing pull = time_exchange<T>(P, n, reps, seed,
                                         core::DataPath::Pull, merge, key,
                                         make);
    const auto emit = [&](const std::string& phase, double t_packed,
                          double t_pull) {
      const double speedup = t_pull > 0.0 ? t_packed / t_pull : 0.0;
      Cell packed_cell;
      packed_cell.type = type;
      packed_cell.nranks = P;
      packed_cell.path = "packed";
      packed_cell.phase = phase;
      packed_cell.n_per_rank = n;
      packed_cell.seconds_median = t_packed;
      Cell pull_cell = packed_cell;
      pull_cell.path = "pull";
      pull_cell.seconds_median = t_pull;
      pull_cell.speedup_vs_packed = speedup;
      cells.push_back(std::move(packed_cell));
      cells.push_back(std::move(pull_cell));
      table.add_row({type, std::to_string(P), std::to_string(n), phase,
                     fmt(t_packed), fmt(t_pull), fmt(speedup) + "x"});
    };
    emit("exchange", packed.exchange, pull.exchange);
    emit("exchange+merge", packed.total, pull.total);
    return packed.total;
  };

  auto run_kary_cell = [&](const std::string& type, int P, usize n, int k,
                           double packed_total, auto key, auto make) {
    using T = std::decay_t<decltype(make(std::declval<Xoshiro256&>()))>;
    Cell cell;
    cell.type = type;
    cell.nranks = P;
    cell.path = "pull";
    cell.phase = "exchange+merge";
    cell.n_per_rank = n;
    cell.algo = "kary";
    cell.k = k;
    cell.seconds_median = time_kary<T>(P, n, reps, seed,
                                       core::DataPath::Pull, k, key, make,
                                       cell.rounds);
    cell.speedup_vs_packed = cell.seconds_median > 0.0
                                 ? packed_total / cell.seconds_median
                                 : 0.0;
    kary_table.add_row({type, std::to_string(P), std::to_string(n),
                        std::to_string(k),
                        std::to_string(cell.rounds.size()),
                        fmt(packed_total), fmt(cell.seconds_median),
                        fmt(cell.speedup_vs_packed) + "x"});
    cells.push_back(std::move(cell));
  };

  const auto u64_key = [](u64 v) { return v; };
  const auto u64_make = [](Xoshiro256& rng) { return rng(); };
  const auto rec_key = [](const Rec64& r) { return r.key; };
  const auto rec_make = [](Xoshiro256& rng) {
    Rec64 r{};
    r.key = rng();
    return r;
  };

  for (int P : {8, 16}) {
    const double u64_packed = run_cell("u64", P, n_u64, u64_key, u64_make);
    const double rec_packed = run_cell("rec64", P, n_rec, rec_key, rec_make);
    for (int k : {2, 4, 8, P}) {
      if (k == P && P == 8) continue;  // k=8 already covers it
      run_kary_cell("u64", P, n_u64, k, u64_packed, u64_key, u64_make);
      run_kary_cell("rec64", P, n_rec, k, rec_packed, rec_key, rec_make);
    }
  }

  std::cout << table.to_string();
  std::cout << "\nk-ary interleaved exchange (overlap_merge, pull path) vs "
               "packed alltoallv exchange+merge:\n"
            << kary_table.to_string();
  run_traced_representative(args, n_u64, seed, cells);
  write_json(out_path, cells);
  std::cout << "wrote " << out_path << " (" << cells.size() << " cells)\n";
  return 0;
}
