// Fig. 2: strong scaling study, DASH (this paper's histogram sort) vs
// Charm++ (HSS reimplementation), 64-bit unsigned keys uniform in [0, 1e9],
// 16 ranks per node (the Charm++ power-of-two constraint), 1..128 nodes.
//
//  (a) median sorting time of `reps` runs with the 95% CI of the median,
//      plus speedup and parallel efficiency — the paper reports ~0.6
//      efficiency for DASH at 3500 cores with Charm++ slightly below;
//  (b) relative fraction of the algorithm phases for DASH — histogramming
//      becomes the bottleneck beyond ~2000 ranks where each rank holds
//      only ~8 MiB.
//
// Simulated seconds: the cost model charges the paper's full problem size
// (--model-keys, default 2^31 keys = 16 GiB) while each run executes a
// proportional sample (--real-keys, default 2^22) — see DESIGN.md.
#include <iostream>

#include "baselines/hss_sort.h"
#include "bench_common.h"
#include "core/histogram_sort.h"
#include "workload/distributions.h"

int main(int argc, char** argv) {
  using namespace hds;
  using runtime::Comm;
  using runtime::Team;
  const bench::Args args(argc, argv);
  const int max_nodes = static_cast<int>(args.get_int("max-nodes", 128));
  const int rpn = static_cast<int>(args.get_int("ranks-per-node", 16));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const u64 model_keys = args.get_int("model-keys", u64{1} << 31);
  const u64 real_keys = args.get_int("real-keys", u64{1} << 20);

  bench::print_header(
      "Strong scaling: DASH histogram sort vs Charm++ HSS",
      "Fig. 2(a)+(b); uniform u64 in [0,1e9], total " +
          fmt_bytes(static_cast<double>(model_keys) * 8) + " modelled");

  struct Row {
    int nodes;
    Summary hds, hss;
    bool hss_ok = true;
    std::array<double, net::kPhaseCount> phases{};
  };
  std::vector<Row> rows;

  for (int nodes : bench::node_series(max_nodes)) {
    const int P = nodes * rpn;
    const usize n_rank = static_cast<usize>(real_keys / P);
    if (n_rank == 0) break;
    runtime::TeamConfig cfg;
    cfg.nranks = P;
    cfg.machine = net::MachineModel::supermuc_phase2(nodes, rpn);
    cfg.data_scale = static_cast<double>(model_keys) /
                     static_cast<double>(real_keys);
    cfg.trace = args.has("trace");

    Row row;
    row.nodes = nodes;

    {
      Team team(cfg);
      row.hds = bench::measure(reps, [&](int rep) {
        workload::GenConfig gen;
        gen.seed = 42 + rep;
        team.run([&](Comm& c) {
          auto local =
              workload::generate_u64(gen, c.rank(), c.size(), n_rank);
          core::sort(c, local);
        });
        for (usize p = 0; p < net::kPhaseCount; ++p)
          row.phases[p] =
              team.stats().phase_fraction(static_cast<net::Phase>(p));
        return team.stats().makespan_s;
      });
      bench::write_trace_if_requested(args, team);
      bench::write_ledger_if_requested(
          args, team, "bench_fig2_strong",
          static_cast<u64>(n_rank) * static_cast<u64>(P),
          {{"nodes", std::to_string(nodes)},
           {"ranks_per_node", std::to_string(rpn)},
           {"n_per_rank", std::to_string(n_rank)}},
          {{"sim_makespan_s", team.stats().makespan_s}});
    }
    {
      Team team(cfg);
      try {
        row.hss = bench::measure(reps, [&](int rep) {
          workload::GenConfig gen;
          gen.seed = 42 + rep;
          baselines::HssConfig hcfg;
          hcfg.seed = 7 + rep;
          team.run([&](Comm& c) {
            auto local =
                workload::generate_u64(gen, c.rank(), c.size(), n_rank);
            baselines::hss_sort(c, local, hcfg);
          });
          return team.stats().makespan_s;
        });
      } catch (const baselines::hss_timeout&) {
        row.hss_ok = false;
      }
    }
    rows.push_back(row);
    std::cerr << "  done: " << nodes << " node(s), P=" << P << "\n";
  }

  // --- Fig. 2(a) ------------------------------------------------------------
  Table fig2a({"nodes", "cores", "DASH t[s]", "DASH CI95", "Charm++ t[s]",
               "Charm++ CI95", "DASH speedup", "DASH efficiency"});
  const double t1 = rows.front().hds.median;
  const int p1 = rows.front().nodes;
  for (const Row& r : rows) {
    const double speedup = t1 / r.hds.median * p1;
    const double eff = speedup / r.nodes;
    fig2a.add_row(
        {std::to_string(r.nodes), std::to_string(r.nodes * rpn),
         fmt(r.hds.median), "[" + fmt(r.hds.ci_lo) + "," + fmt(r.hds.ci_hi) + "]",
         r.hss_ok ? fmt(r.hss.median) : "DNF",
         r.hss_ok ? "[" + fmt(r.hss.ci_lo) + "," + fmt(r.hss.ci_hi) + "]"
                  : "-",
         fmt(speedup, 2), fmt(eff, 3)});
  }
  std::cout << "Fig. 2(a) — median of " << reps << " runs:\n"
            << fig2a.to_string() << "\n";

  // --- Fig. 2(b) ------------------------------------------------------------
  Table fig2b({"nodes", "LocalSort %", "Histogram %", "Exchange %",
               "Merge %", "Other %"});
  for (const Row& r : rows) {
    std::vector<std::string> cells{std::to_string(r.nodes)};
    for (const net::Phase p :
         {net::Phase::LocalSort, net::Phase::Histogram, net::Phase::Exchange,
          net::Phase::Merge, net::Phase::Other})
      cells.push_back(fmt(100.0 * r.phases[static_cast<usize>(p)], 1));
    fig2b.add_row(std::move(cells));
  }
  std::cout << "Fig. 2(b) — DASH phase breakdown (rank-averaged):\n"
            << fig2b.to_string();
  return 0;
}
