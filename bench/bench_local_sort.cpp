// Local-sort kernel study: real wall-clock comparison of the comparison
// kernel (std::sort) against the LSD radix kernel (core/radix_sort.h) across
// the KeyTraits-bisectable key types and a range of sizes, plus a record
// (key, payload) row exercising the pairs path of radix_sort_by_key.
//
// Unlike the figure benchmarks this measures *real* time, not simulated
// time: it exists to validate the machine-model constant
// `radix_s_per_elem_pass` and the Auto-dispatch crossover against the
// hardware CI runs on. Emits a machine-readable JSON file (one object per
// (type, n, kernel) cell) consumed by the ci.sh perf smoke.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/local_sort.h"
#include "core/radix_sort.h"

namespace {

using namespace hds;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <class T>
T random_value(Xoshiro256& rng);

template <>
u32 random_value<u32>(Xoshiro256& rng) {
  return static_cast<u32>(rng());
}
template <>
u64 random_value<u64>(Xoshiro256& rng) {
  return rng();
}
template <>
i32 random_value<i32>(Xoshiro256& rng) {
  return static_cast<i32>(static_cast<u32>(rng()));
}
template <>
i64 random_value<i64>(Xoshiro256& rng) {
  return static_cast<i64>(rng());
}
template <>
float random_value<float>(Xoshiro256& rng) {
  return static_cast<float>((rng.uniform01() - 0.5) * 1e6);
}
template <>
double random_value<double>(Xoshiro256& rng) {
  return (rng.uniform01() - 0.5) * 1e9;
}

struct Cell {
  std::string type;
  usize n = 0;
  std::string kernel;
  double seconds_median = 0.0;
  double speedup_vs_comparison = 1.0;
};

/// Median wall-clock seconds of `fn` run on a fresh copy of `base` per rep.
template <class T, class Fn>
double time_kernel(const std::vector<T>& base, int reps, Fn fn) {
  std::vector<double> times;
  times.reserve(static_cast<usize>(reps) + 1);
  for (int r = 0; r <= reps; ++r) {  // rep 0 is a cache/allocator warmup
    std::vector<T> data = base;
    const double t0 = now_s();
    fn(data);
    const double t1 = now_s();
    if (!std::is_sorted(data.begin(), data.end())) {
      std::cerr << "FATAL: kernel produced unsorted output\n";
      std::exit(1);
    }
    if (r > 0) times.push_back(t1 - t0);
  }
  return median(std::move(times));
}

template <class T>
void bench_type(const std::string& type, const std::vector<usize>& sizes,
                int reps, u64 seed, Table& table, std::vector<Cell>& cells) {
  for (const usize n : sizes) {
    Xoshiro256 rng(hash_mix(seed, n));
    std::vector<T> base(n);
    for (auto& v : base) v = random_value<T>(rng);

    const double t_cmp = time_kernel(base, reps, [](std::vector<T>& d) {
      std::sort(d.begin(), d.end());
    });
    const double t_rad = time_kernel(base, reps, [](std::vector<T>& d) {
      core::radix_sort_keys(d);
    });
    const double speedup = t_rad > 0.0 ? t_cmp / t_rad : 0.0;

    cells.push_back({type, n, "comparison", t_cmp, 1.0});
    cells.push_back({type, n, "radix", t_rad, speedup});
    table.add_row({type, std::to_string(n), fmt(t_cmp), fmt(t_rad),
                   fmt(speedup) + "x"});
  }
}

/// Record row: (u64 key, u64 payload) pairs via radix_sort_by_key — the
/// pairs path — against std::sort with the same key projection.
void bench_records(const std::vector<usize>& sizes, int reps, u64 seed,
                   Table& table, std::vector<Cell>& cells) {
  struct Rec {
    u64 key;
    u64 payload;
    bool operator<(const Rec& o) const { return key < o.key; }
  };
  for (const usize n : sizes) {
    Xoshiro256 rng(hash_mix(seed ^ 0xabcdULL, n));
    std::vector<Rec> base(n);
    for (auto& r : base) r = Rec{rng(), rng()};

    auto timed = [&](auto fn) {
      std::vector<double> times;
      for (int r = 0; r <= reps; ++r) {
        std::vector<Rec> data = base;
        const double t0 = now_s();
        fn(data);
        const double t1 = now_s();
        if (!std::is_sorted(data.begin(), data.end())) {
          std::cerr << "FATAL: record kernel produced unsorted output\n";
          std::exit(1);
        }
        if (r > 0) times.push_back(t1 - t0);
      }
      return median(std::move(times));
    };
    const double t_cmp = timed(
        [](std::vector<Rec>& d) { std::sort(d.begin(), d.end()); });
    const double t_rad = timed([](std::vector<Rec>& d) {
      core::radix_sort_by_key(d, [](const Rec& r) { return r.key; });
    });
    const double speedup = t_rad > 0.0 ? t_cmp / t_rad : 0.0;
    cells.push_back({"u64x2_record", n, "comparison", t_cmp, 1.0});
    cells.push_back({"u64x2_record", n, "radix", t_rad, speedup});
    table.add_row({"u64x2_record", std::to_string(n), fmt(t_cmp), fmt(t_rad),
                   fmt(speedup) + "x"});
  }
}

void write_json(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "[\n";
  for (usize i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "  {\"type\": \"" << c.type << "\", \"n\": " << c.n
        << ", \"kernel\": \"" << c.kernel
        << "\", \"seconds_median\": " << c.seconds_median
        << ", \"speedup_vs_comparison\": " << c.speedup_vs_comparison << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  const bench::Args args(argc, argv);
  const int max_exp = static_cast<int>(args.get_int("max_exp", 20));
  const int reps = static_cast<int>(args.get_int("reps", 5));
  const u64 seed = static_cast<u64>(args.get_int("seed", 1));
  const std::string out_path =
      args.get_string("out", "BENCH_local_sort.json");

  std::vector<usize> sizes;
  for (int e : {16, 18, max_exp})
    if (e <= max_exp) sizes.push_back(usize{1} << e);
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());

  bench::print_header(
      "Local-sort kernel study (real wall-clock)",
      "kernel layer validation; uniform keys, median of " +
          std::to_string(reps) + " reps");

  Table table({"type", "n", "std::sort t[s]", "radix t[s]", "speedup"});
  std::vector<Cell> cells;
  bench_type<u32>("u32", sizes, reps, seed, table, cells);
  bench_type<u64>("u64", sizes, reps, seed, table, cells);
  bench_type<i32>("i32", sizes, reps, seed, table, cells);
  bench_type<i64>("i64", sizes, reps, seed, table, cells);
  bench_type<float>("f32", sizes, reps, seed, table, cells);
  bench_type<double>("f64", sizes, reps, seed, table, cells);
  bench_records(sizes, reps, seed, table, cells);

  std::cout << table.to_string();

  // Derived machine-model constant: per-element per-pass seconds from the
  // largest u64 run (8 executed passes on full-range uniform keys).
  for (const Cell& c : cells) {
    if (c.type == "u64" && c.n == sizes.back() && c.kernel == "radix") {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3g",
                    c.seconds_median / (static_cast<double>(c.n) * 8.0));
      std::cout << "\nimplied radix_s_per_elem_pass ~ " << buf
                << " s (machine.h default: 1.2e-9)\n";
    }
  }

  // --ledger: wall-clock benches have no Team, so emit the scalar-only
  // ledger variant. Cells carry the "wall_" prefix — tools/perf_history.py
  // only warns on these (hardware-dependent), never gates.
  {
    u64 total = 0;
    std::vector<std::pair<std::string, double>> scalars;
    for (const Cell& c : cells) {
      if (c.n != sizes.back() || c.kernel != "radix") continue;
      total += c.n;
      scalars.emplace_back("wall_radix_speedup_" + c.type,
                           c.speedup_vs_comparison);
      if (c.type == "u64")
        scalars.emplace_back(
            "wall_radix_s_per_elem_pass",
            c.seconds_median / (static_cast<double>(c.n) * 8.0));
    }
    bench::write_wallclock_ledger_if_requested(
        args, "bench_local_sort", total,
        {{"max_exp", std::to_string(max_exp)},
         {"reps", std::to_string(reps)},
         {"seed", std::to_string(seed)}},
        std::move(scalars));
  }

  write_json(out_path, cells);
  std::cout << "wrote " << out_path << " (" << cells.size() << " cells)\n";
  return 0;
}
