// Recovery study (simulated time): what superstep checkpointing costs when
// nothing fails, and what each RecoveryMode pays when a rank does fail.
//
// (a) Fault-free overhead: ResumeCheckpoint (buddy checkpoints at every
//     superstep boundary, charged at the machine model's overlap residue)
//     vs RestartFull (no checkpoints) on identical inputs. The ci.sh gate
//     requires the overhead to stay under 10%.
// (b) Recovery vs restart: a rank is crashed at the begin/end of each
//     communicating superstep (histogram = splitter determination,
//     exchange) and the total simulated time-to-solution — aborted
//     attempts included — is compared across RestartFull, ResumeCheckpoint
//     and ShrinkSurvivors. The ci.sh gate requires ResumeCheckpoint to
//     beat RestartFull for crashes at or after the exchange superstep.
//
// Simulated time is deterministic per seed, so every cell is a single run.
// Emits BENCH_recovery.json consumed by the ci.sh fault-matrix stage.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/histogram_sort.h"
#include "runtime/comm.h"
#include "runtime/fault.h"
#include "runtime/team.h"

namespace {

using namespace hds;

struct Cell {
  std::string kind;   // "overhead" | "crash"
  int nranks = 0;
  std::string crash;  // "" | "histogram-begin" | ... (crash cells)
  std::string mode;   // "plain" | RecoveryMode name
  usize n_per_rank = 0;
  double sim_seconds = 0.0;        // total simulated time-to-solution
  double vs_restart = 1.0;         // RestartFull seconds / this mode's
  double overhead_frac = 0.0;      // overhead cells: ckpt/plain - 1
  double recomputed_fraction = 0.0;
  double recover_s = 0.0;          // max detect+agree time (shrink cells)
  int attempts = 0;
  u64 checkpoint_bytes = 0;
};

std::vector<std::vector<u64>> make_input(int p, usize per_rank, u64 seed) {
  std::vector<std::vector<u64>> parts(p);
  for (int r = 0; r < p; ++r) {
    Xoshiro256 rng(hash_mix(seed, static_cast<u64>(r)));
    parts[r].resize(per_rank);
    for (auto& v : parts[r]) v = rng();
  }
  return parts;
}

struct RunResult {
  double sim_seconds = 0.0;
  core::ResilienceReport rep;
};

RunResult run_mode(int P, usize n, u64 seed, core::RecoveryMode mode,
                   std::shared_ptr<runtime::FaultPlan> plan) {
  runtime::TeamConfig cfg;
  cfg.nranks = P;
  cfg.fault = std::move(plan);
  cfg.watchdog_timeout_s = 30.0;
  runtime::Team team(cfg);
  auto parts = make_input(P, n, seed);
  core::ResilienceConfig rcfg;
  rcfg.mode = mode;
  rcfg.fault_budget = 4;
  core::ResilienceReport rep;
  (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
  return {rep.sim_seconds_total, rep};
}

/// One representative traced run for --trace / --ledger: the P=8
/// checkpointed fault-free sort (the configuration both gates depend on)
/// re-executed in a trace-enabled team. The headline scalars distilled into
/// the ledger are the deterministic simulated-time cells the perf history
/// gates: fault-free seconds and overhead per P, plus resume-vs-restart
/// for each crash point.
void run_traced_representative(const bench::Args& args, usize n, u64 seed,
                               const std::vector<Cell>& cells) {
  if (!args.has("trace") && !args.has("ledger")) return;
  constexpr int P = 8;
  runtime::TeamConfig cfg;
  cfg.nranks = P;
  cfg.watchdog_timeout_s = 30.0;
  cfg.trace = true;
  runtime::Team team(cfg);
  auto parts = make_input(P, n, seed);
  core::ResilienceConfig rcfg;
  rcfg.mode = core::RecoveryMode::ResumeCheckpoint;
  rcfg.fault_budget = 4;
  core::ResilienceReport rep;
  (void)core::sort_resilient(team, parts, core::SortConfig{}, rcfg, &rep);
  bench::write_trace_if_requested(args, team);

  std::vector<std::pair<std::string, double>> scalars;
  for (const Cell& c : cells) {
    const std::string p = "_P" + std::to_string(c.nranks);
    if (c.kind == "overhead" && c.mode == "plain")
      scalars.emplace_back("sim_plain_s" + p, c.sim_seconds);
    if (c.kind == "overhead" && c.mode == "checkpointed")
      scalars.emplace_back("sim_ckpt_overhead_frac" + p, c.overhead_frac);
    if (c.kind == "crash" && c.mode == "ResumeCheckpoint")
      scalars.emplace_back("sim_resume_vs_restart_" + c.crash, c.vs_restart);
  }
  bench::write_ledger_if_requested(
      args, team, "bench_recovery", static_cast<u64>(n) * P,
      {{"mode", "ResumeCheckpoint"},
       {"n_per_rank", std::to_string(n)},
       {"seed", std::to_string(seed)}},
      std::move(scalars));
}

void write_json(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "[\n";
  for (usize i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "  {\"kind\": \"" << c.kind << "\", \"nranks\": " << c.nranks
        << ", \"crash\": \"" << c.crash << "\", \"mode\": \"" << c.mode
        << "\", \"n_per_rank\": " << c.n_per_rank
        << ", \"sim_seconds\": " << c.sim_seconds
        << ", \"vs_restart\": " << c.vs_restart
        << ", \"overhead_frac\": " << c.overhead_frac
        << ", \"recomputed_fraction\": " << c.recomputed_fraction
        << ", \"recover_s\": " << c.recover_s
        << ", \"attempts\": " << c.attempts
        << ", \"checkpoint_bytes\": " << c.checkpoint_bytes << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hds;
  const bench::Args args(argc, argv);
  const u64 seed = static_cast<u64>(args.get_int("seed", 9));
  const usize n = static_cast<usize>(args.get_int("n", i64{1} << 17));
  const std::string out_path = args.get_string("out", "BENCH_recovery.json");

  bench::print_header(
      "Recovery study (simulated time)",
      "superstep checkpoint overhead and recovery-vs-restart for crashes at "
      "each superstep; single deterministic run per cell");

  std::vector<Cell> cells;

  // (a) Fault-free checkpoint overhead.
  Table ovh({"P", "n/rank", "plain t[s]", "ckpt t[s]", "overhead"});
  for (int P : {4, 8, 16}) {
    const RunResult plain =
        run_mode(P, n, seed, core::RecoveryMode::RestartFull, nullptr);
    const RunResult ckpt =
        run_mode(P, n, seed, core::RecoveryMode::ResumeCheckpoint, nullptr);
    const double frac = ckpt.sim_seconds / plain.sim_seconds - 1.0;
    cells.push_back({"overhead", P, "", "plain", n, plain.sim_seconds, 1.0,
                     0.0, 0.0, 0.0, plain.rep.attempts, 0});
    cells.push_back({"overhead", P, "", "checkpointed", n, ckpt.sim_seconds,
                     plain.sim_seconds / ckpt.sim_seconds, frac, 0.0, 0.0,
                     ckpt.rep.attempts, ckpt.rep.checkpoint_bytes});
    ovh.add_row({std::to_string(P), std::to_string(n),
                 fmt(plain.sim_seconds), fmt(ckpt.sim_seconds),
                 fmt(frac * 100.0) + "%"});
  }
  std::cout << ovh.to_string() << "\n";

  // (b) Crash at each communicating superstep: begin and end of the
  // histogram (splitter) and exchange phases. Merge has no communication
  // ops, so a post-exchange crash is keyed to the last exchange op.
  constexpr int P = 8;
  constexpr rank_t kVictim = 1;

  auto probe_plan = std::make_shared<runtime::FaultPlan>();
  (void)run_mode(P, n, seed, core::RecoveryMode::RestartFull, probe_plan);
  const u64 hist_ops =
      probe_plan->ops_observed_in_phase(kVictim, net::Phase::Histogram);
  const u64 ex_ops =
      probe_plan->ops_observed_in_phase(kVictim, net::Phase::Exchange);
  if (hist_ops == 0 || ex_ops == 0) {
    std::cerr << "FATAL: probe found no ops in a communicating phase\n";
    return 1;
  }

  struct CrashPoint {
    std::string name;
    net::Phase phase;
    u64 k;
  };
  const std::vector<CrashPoint> points{
      {"histogram-begin", net::Phase::Histogram, 0},
      {"histogram-end", net::Phase::Histogram, hist_ops - 1},
      {"exchange-begin", net::Phase::Exchange, 0},
      {"exchange-end", net::Phase::Exchange, ex_ops - 1},
  };

  Table tbl({"crash", "mode", "t[s]", "vs restart", "recomputed",
             "attempts"});
  for (const CrashPoint& cp : points) {
    double restart_s = 0.0;
    for (core::RecoveryMode mode :
         {core::RecoveryMode::RestartFull,
          core::RecoveryMode::ResumeCheckpoint,
          core::RecoveryMode::ShrinkSurvivors}) {
      auto plan = std::make_shared<runtime::FaultPlan>();
      plan->crash_rank_at_phase_op(kVictim, cp.phase, cp.k);
      const RunResult res = run_mode(P, n, seed, mode, plan);
      if (mode == core::RecoveryMode::RestartFull)
        restart_s = res.sim_seconds;
      double recover_s = 0.0;
      for (double s : res.rep.recovery_seconds)
        recover_s = std::max(recover_s, s);
      Cell c{"crash",
             P,
             cp.name,
             std::string(core::recovery_mode_name(mode)),
             n,
             res.sim_seconds,
             restart_s / res.sim_seconds,
             0.0,
             res.rep.recomputed_fraction,
             recover_s,
             res.rep.attempts,
             res.rep.checkpoint_bytes};
      cells.push_back(c);
      tbl.add_row({cp.name, c.mode, fmt(c.sim_seconds), fmt(c.vs_restart),
                   fmt(c.recomputed_fraction), std::to_string(c.attempts)});
    }
  }
  std::cout << tbl.to_string();

  run_traced_representative(args, n, seed, cells);
  write_json(out_path, cells);
  std::cout << "\nwrote " << cells.size() << " cells -> " << out_path
            << "\n";
  return 0;
}
